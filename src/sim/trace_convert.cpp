#include "plrupart/sim/trace_convert.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>

#include "plrupart/sim/trace_file.hpp"

namespace plrupart::sim {

namespace {

/// True when the writer has hit the op cap (0 = unlimited).
[[nodiscard]] bool at_cap(const TraceWriter& writer, std::uint64_t max_ops) {
  return max_ops != 0 && writer.ops_written() >= max_ops;
}

ConvertStats convert_native(const std::string& in_path, TraceWriter& writer,
                            std::uint64_t max_ops) {
  ConvertStats stats;
  TraceReader reader(in_path);
  while (!at_cap(writer, max_ops)) {
    const auto op = reader.next();
    if (!op) break;
    ++stats.records_in;
    writer.append(*op);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// ChampSim binary input_instr records.
// ---------------------------------------------------------------------------

/// Layout of ChampSim's 64-byte little-endian input_instr record.
constexpr std::size_t kChampSimRecordBytes = 64;
constexpr std::size_t kChampSimDestMemOffset = 16;  ///< 2 x u64 store addresses
constexpr std::size_t kChampSimSrcMemOffset = 32;   ///< 4 x u64 load addresses
constexpr std::size_t kChampSimDestMemCount = 2;
constexpr std::size_t kChampSimSrcMemCount = 4;

[[nodiscard]] std::uint64_t load_le_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

ConvertStats convert_champsim(const std::string& in_path, TraceWriter& writer,
                              std::uint64_t max_ops) {
  ConvertStats stats;
  ByteReader in(in_path, TraceReader::kDefaultBufferBytes);
  std::array<unsigned char, kChampSimRecordBytes> rec{};
  // Non-memory instructions accumulate here and ride on the next memory op.
  // Saturates at 2^32-1: a 4-billion-instruction memory-free stretch carries
  // no cache-relevant information beyond "very long".
  std::uint64_t gap = 0;
  while (!at_cap(writer, max_ops)) {
    const int first = in.get();
    if (first == ByteReader::kEof) break;
    rec[0] = static_cast<unsigned char>(first);
    for (std::size_t i = 1; i < kChampSimRecordBytes; ++i) {
      const int c = in.get();
      if (c == ByteReader::kEof)
        throw TraceError("ChampSim trace '" + in_path + "': truncated record at byte " +
                         std::to_string(in.offset()) + " (file size is not a multiple "
                         "of the 64-byte input_instr record)");
      rec[i] = static_cast<unsigned char>(c);
    }
    ++stats.records_in;

    bool instr_has_mem = false;
    const auto emit = [&](std::uint64_t addr, bool write) {
      if (addr == 0 || at_cap(writer, max_ops)) return;
      const auto clamped =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(
              gap, std::numeric_limits<std::uint32_t>::max()));
      writer.append(MemOp{.addr = addr, .write = write, .gap_instrs = clamped});
      gap = 0;
      instr_has_mem = true;
    };
    for (std::size_t i = 0; i < kChampSimSrcMemCount; ++i)
      emit(load_le_u64(rec.data() + kChampSimSrcMemOffset + 8 * i), false);
    for (std::size_t i = 0; i < kChampSimDestMemCount; ++i)
      emit(load_le_u64(rec.data() + kChampSimDestMemOffset + 8 * i), true);
    if (!instr_has_mem) ++gap;
  }
  return stats;
}

// ---------------------------------------------------------------------------
// PIN-style text address traces.
// ---------------------------------------------------------------------------

/// Whole-token hex parse, tolerating an 0x/0X prefix and a trailing ':'.
[[nodiscard]] std::uint64_t parse_pin_hex(std::string tok, const std::string& path,
                                          std::uint64_t lineno, const char* what) {
  if (!tok.empty() && tok.back() == ':') tok.pop_back();
  std::string_view sv = tok;
  if (sv.size() >= 2 && sv[0] == '0' && (sv[1] == 'x' || sv[1] == 'X'))
    sv.remove_prefix(2);
  std::uint64_t value = 0;
  const auto* begin = sv.data();
  const auto* end = begin + sv.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 16);
  if (sv.empty() || ec != std::errc{} || ptr != end)
    throw TraceError("PIN trace '" + path + "', line " + std::to_string(lineno) +
                     ": bad " + what + " '" + tok + "'");
  return value;
}

ConvertStats convert_pin(const std::string& in_path, TraceWriter& writer,
                         std::uint64_t max_ops) {
  ConvertStats stats;
  std::ifstream in(in_path, std::ios::binary);
  if (!in.good()) throw TraceError("cannot open trace file '" + in_path + "'");
  std::string line;
  std::uint64_t lineno = 0;
  while (!at_cap(writer, max_ops) && std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty() || line[0] == '#') continue;  // pinatrace ends with "#eof"
    ++stats.records_in;
    std::istringstream fields(line);
    std::string ip_tok, rw_tok, addr_tok;
    if (!(fields >> ip_tok >> rw_tok >> addr_tok))
      throw TraceError("PIN trace '" + in_path + "', line " + std::to_string(lineno) +
                       ": expected '<ip>: <R|W> <addr>'");
    (void)parse_pin_hex(ip_tok, in_path, lineno, "instruction pointer");
    if (rw_tok != "R" && rw_tok != "W")
      throw TraceError("PIN trace '" + in_path + "', line " + std::to_string(lineno) +
                       ": bad R/W flag '" + rw_tok + "'");
    const auto addr = parse_pin_hex(addr_tok, in_path, lineno, "address");
    writer.append(MemOp{.addr = addr, .write = rw_tok == "W", .gap_instrs = 0});
  }
  if (in.bad()) throw TraceError("I/O error reading trace file '" + in_path + "'");
  return stats;
}

/// Resolve kAuto: native if the first line is a plrupart-trace header.
[[nodiscard]] ExternalTraceKind detect_kind(const std::string& in_path) {
  std::ifstream in(in_path, std::ios::binary);
  if (!in.good()) throw TraceError("cannot open trace file '" + in_path + "'");
  std::string first_line;
  std::getline(in, first_line);
  if (first_line == kTraceHeaderV1 || first_line == kTraceHeaderV2)
    return ExternalTraceKind::kNative;
  throw TraceError("cannot auto-detect the format of '" + in_path + "' (no "
                   "plrupart-trace header); pass an explicit input kind "
                   "(champsim or pin)");
}

}  // namespace

ConvertStats convert_trace(const std::string& in_path, const std::string& out_path,
                           ExternalTraceKind kind, TraceFormat out_format,
                           std::uint64_t max_ops) {
  // Opening the output truncates it — an in-place conversion would destroy
  // the input before a single record is read (and the failure cleanup below
  // would then delete it). Compare resolved paths so `./x` vs `x` is caught.
  {
    std::error_code in_ec, out_ec;
    const auto in_canon = std::filesystem::weakly_canonical(in_path, in_ec);
    const auto out_canon = std::filesystem::weakly_canonical(out_path, out_ec);
    if (in_path == out_path || (!in_ec && !out_ec && in_canon == out_canon))
      throw TraceError("refusing to convert '" + in_path + "' onto itself (the "
                       "output would truncate the input; pick a different output "
                       "path)");
  }
  if (kind == ExternalTraceKind::kAuto) kind = detect_kind(in_path);
  // On any failure the partial output is deleted: v2 has no trailer, so a
  // truncated-but-valid-looking trace left on disk would be indistinguishable
  // from a complete one to everything downstream.
  try {
    TraceWriter writer(out_path, out_format);
    ConvertStats stats;
    switch (kind) {
      case ExternalTraceKind::kNative:
        stats = convert_native(in_path, writer, max_ops);
        break;
      case ExternalTraceKind::kChampSim:
        stats = convert_champsim(in_path, writer, max_ops);
        break;
      case ExternalTraceKind::kPin:
        stats = convert_pin(in_path, writer, max_ops);
        break;
      case ExternalTraceKind::kAuto:
        PLRUPART_ASSERT_MSG(false, "detect_kind() must resolve kAuto");
    }
    if (writer.ops_written() == 0)
      throw TraceError("input trace '" + in_path + "' yields no memory operations; "
                       "refusing to write an empty trace");
    writer.close();
    stats.ops_out = writer.ops_written();
    stats.kind = kind;
    stats.out_format = out_format;
    return stats;
  } catch (...) {
    std::error_code ec;  // best effort; the original error is what matters
    std::filesystem::remove(out_path, ec);  // determinism-lint: allow(non-throwing cleanup in catch; AtomicFile::remove_file would mask the error)
    throw;
  }
}

ExternalTraceKind trace_kind_from_name(const std::string& name) {
  if (name == "auto") return ExternalTraceKind::kAuto;
  if (name == "native") return ExternalTraceKind::kNative;
  if (name == "champsim") return ExternalTraceKind::kChampSim;
  if (name == "pin") return ExternalTraceKind::kPin;
  throw TraceError("unknown input trace kind '" + name +
                   "' (expected auto, native, champsim, or pin)");
}

TraceFormat trace_format_from_name(const std::string& name) {
  if (name == "v1") return TraceFormat::kTextV1;
  if (name == "v2") return TraceFormat::kBinaryV2;
  throw TraceError("unknown trace format '" + name + "' (expected v1 or v2)");
}

}  // namespace plrupart::sim
