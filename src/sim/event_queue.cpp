#include "plrupart/sim/event_queue.hpp"

#include <algorithm>

#include "plrupart/common/assert.hpp"

namespace plrupart::sim {

namespace {

/// Min-heap order on (tick, seq). Every event's (tick, seq) pair is unique
/// (seq increments monotonically), so this is a strict total order and the
/// pop sequence is fully determined by the schedule sequence — no tie can
/// ever be broken by heap layout.
struct Later {
  [[nodiscard]] bool operator()(const TimedEvent& a, const TimedEvent& b) const noexcept {
    if (a.tick != b.tick) return a.tick > b.tick;
    return a.seq > b.seq;
  }
};

}  // namespace

void EventQueue::schedule(std::uint64_t tick, EventKind kind, std::uint32_t lane,
                          std::uint64_t payload) {
  PLRUPART_ASSERT_MSG(tick >= now_,
                      "event scheduled at tick " + std::to_string(tick) +
                          " behind the monotone floor " + std::to_string(now_));
  heap_.push_back(TimedEvent{tick, next_seq_++, kind, lane, payload});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

const TimedEvent& EventQueue::peek() const {
  PLRUPART_ASSERT_MSG(!heap_.empty(), "peek on an empty event queue");
  return heap_.front();
}

TimedEvent EventQueue::pop() {
  PLRUPART_ASSERT_MSG(!heap_.empty(), "pop on an empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  TimedEvent ev = heap_.back();
  heap_.pop_back();
  PLRUPART_ASSERT_MSG(ev.tick >= now_, "event queue popped backwards in time");
  now_ = ev.tick;
  return ev;
}

}  // namespace plrupart::sim
