// Set-sharded execution mode of CmpSimulator (internal engine).
//
// Partitions the L2 set-index space into K contiguous shards and replays one
// run on K workers plus one demux thread, synchronizing only at interval-
// controller boundaries, with CSV-visible results byte-identical to the
// serial path. See sharded_replay.cpp for the full replication argument.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "plrupart/sim/cmp_simulator.hpp"

namespace plrupart::sim::internal {

/// Test-only instrumentation points (tests/test_parallel_stress.cpp).
struct ShardedTestHooks {
  /// Called by a shard worker right before each L2 access it owns, with its
  /// shard index. Throwing from here exercises the abort/join path.
  std::function<void(std::uint32_t shard)> on_owned_access;
};

/// Can this L2 configuration run set-sharded with bit-exact results? False
/// when the replacement policy or the profiler carries cache-global mutable
/// state that an interleaved per-set replay cannot reproduce: NRU (one
/// cache-wide rotating pointer), Random (one shared RNG stream), and the NRU
/// eSDH profiler (ATD runs NRU; kSmear adds a fractional side histogram).
[[nodiscard]] bool set_sharding_supported(const core::CpaConfig& l2);

/// Shard count a run will actually use: `sim_threads` (0 = hardware
/// concurrency) clamped to the L2 set count, collapsed to 1 when the
/// configuration is unsupported. 1 means the serial path runs.
[[nodiscard]] std::uint32_t resolve_sim_shards(const SimConfig& config);

/// Run the set-sharded replay over an externally-built hierarchy. `shards`
/// must come from resolve_sim_shards (>= 2). `config.cores` must already be
/// one entry per core. Used by CmpSimulator::run() and driven directly by the
/// stress tests (which need `hooks`).
[[nodiscard]] SimResult run_set_sharded(
    const SimConfig& config, const std::vector<std::unique_ptr<TraceSource>>& traces,
    MemoryHierarchy& hierarchy, std::uint32_t shards,
    const ShardedTestHooks* hooks = nullptr);

}  // namespace plrupart::sim::internal
