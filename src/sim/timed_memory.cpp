#include "plrupart/sim/timed_memory.hpp"

#include <algorithm>

#include "plrupart/common/assert.hpp"
#include "plrupart/common/error.hpp"

namespace plrupart::sim {

std::string to_string(TimingMode mode) {
  return mode == TimingMode::kTimed ? "timed" : "functional";
}

TimingMode timing_mode_from_string(const std::string& text) {
  if (text == "functional") return TimingMode::kFunctional;
  if (text == "timed") return TimingMode::kTimed;
  throw InvariantError("unknown timing mode '" + text +
                       "' (expected 'functional' or 'timed')");
}

void TimedParams::validate() const {
  PLRUPART_ASSERT_MSG(mshrs >= 1, "timed mode needs at least one MSHR");
  PLRUPART_ASSERT_MSG(writeback_queue >= 1,
                      "timed mode needs at least one writeback-queue slot");
  PLRUPART_ASSERT_MSG(dram_banks >= 1, "timed mode needs at least one DRAM bank");
  PLRUPART_ASSERT_MSG(row_bytes >= 1, "row_bytes must be positive");
}

TimedStats TimedStats::delta_since(const TimedStats& base) const {
  TimedStats d;
  d.dram_reads = dram_reads - base.dram_reads;
  d.dram_writebacks = dram_writebacks - base.dram_writebacks;
  d.row_hits = row_hits - base.row_hits;
  d.row_misses = row_misses - base.row_misses;
  d.bank_conflicts = bank_conflicts - base.bank_conflicts;
  d.mshr_coalesced = mshr_coalesced - base.mshr_coalesced;
  d.mshr_full_stalls = mshr_full_stalls - base.mshr_full_stalls;
  d.wb_full_stalls = wb_full_stalls - base.wb_full_stalls;
  d.dram_bytes = dram_bytes - base.dram_bytes;
  d.mshr_peak = mshr_peak;  // peak tracking restarts at mark(), not here
  return d;
}

TimedMemory::TimedMemory(const TimedParams& params, const cache::Geometry& l2_geo)
    : params_(params), geo_(l2_geo) {
  params_.validate();
  geo_.validate();
  PLRUPART_ASSERT_MSG(params_.row_bytes >= geo_.line_bytes,
                      "DRAM row must span at least one cache line");
  banks_.resize(params_.dram_banks);
  // Slot bookkeeping is sized on demand (a filled-but-unretired entry briefly
  // holds a slot past its hardware lifetime); the HARDWARE limit is enforced
  // on pending_ in alloc_mshr, never on the slot count.
  mshrs_.reserve(params_.mshrs);
  dirty_.assign(geo_.sets() * geo_.associativity, false);
}

std::uint32_t TimedMemory::bank_of(cache::Addr line) const noexcept {
  return static_cast<std::uint32_t>(line % params_.dram_banks);
}

std::uint64_t TimedMemory::row_of(cache::Addr line) const noexcept {
  const std::uint64_t lines_per_row =
      std::max<std::uint64_t>(1, params_.row_bytes / geo_.line_bytes);
  return (line / params_.dram_banks) / lines_per_row;
}

std::size_t TimedMemory::dirty_index(cache::Addr line, std::uint32_t way) const {
  PLRUPART_ASSERT(way < geo_.associativity);
  return static_cast<std::size_t>(geo_.set_index(line)) * geo_.associativity + way;
}

void TimedMemory::process_until(std::uint64_t t) {
  while (!queue_.empty() && queue_.peek().tick <= t) handle(queue_.pop());
}

void TimedMemory::handle(const TimedEvent& ev) {
  switch (ev.kind) {
    case EventKind::kBankService: {
      Bank& bank = banks_[ev.lane];
      PLRUPART_ASSERT(bank.in_service);
      // Completion chains through a same-tick event (FIFO tie-break keeps it
      // ordered after this one): the fill/drain effect and the bank's next
      // service decision stay distinct, observable steps.
      const DramRequest& done = bank.in_service_req;
      if (done.writeback) {
        queue_.schedule(ev.tick, EventKind::kWritebackDrain, ev.lane);
      } else {
        queue_.schedule(ev.tick, EventKind::kMshrComplete, done.mshr);
      }
      bank.in_service = false;
      if (!bank.pending.empty()) start_service(ev.lane, ev.tick);
      break;
    }
    case EventKind::kMshrComplete: {
      Mshr& m = mshrs_[ev.lane];
      PLRUPART_ASSERT(!m.done && m.refs > 0);
      m.done = true;
      m.done_at = ev.tick;
      PLRUPART_ASSERT(pending_ > 0);
      --pending_;
      break;
    }
    case EventKind::kWritebackDrain: {
      PLRUPART_ASSERT(wb_used_ > 0);
      --wb_used_;
      break;
    }
    case EventKind::kUser:
      break;
  }
}

void TimedMemory::start_service(std::uint32_t bank_idx, std::uint64_t t) {
  Bank& bank = banks_[bank_idx];
  PLRUPART_ASSERT(!bank.in_service && !bank.pending.empty());
  // FR-FCFS: open-row hits first, reads before writebacks, oldest first
  // within a class. The arrival stamp makes the pick a strict total order.
  std::size_t best = 0;
  auto class_of = [&](const DramRequest& r) -> std::uint32_t {
    const bool row_hit = bank.row_valid && r.row == bank.open_row;
    return (r.writeback ? 2U : 0U) + (row_hit ? 0U : 1U);
  };
  for (std::size_t i = 1; i < bank.pending.size(); ++i) {
    const std::uint32_t ci = class_of(bank.pending[i]);
    const std::uint32_t cb = class_of(bank.pending[best]);
    if (ci < cb || (ci == cb && bank.pending[i].order < bank.pending[best].order))
      best = i;
  }
  const DramRequest req = bank.pending[best];
  bank.pending.erase(bank.pending.begin() +
                     static_cast<std::ptrdiff_t>(best));

  std::uint64_t latency = 0;
  if (!bank.row_valid) {
    latency = params_.t_row_miss;
    ++stats_.row_misses;
  } else if (req.row == bank.open_row) {
    latency = params_.t_row_hit;
    ++stats_.row_hits;
  } else {
    latency = params_.t_row_conflict;
    ++stats_.bank_conflicts;
  }
  bank.open_row = req.row;
  bank.row_valid = true;  // open-page policy: the row stays open after service
  bank.in_service = true;
  bank.in_service_req = req;
  queue_.schedule(t + latency, EventKind::kBankService, bank_idx);
}

void TimedMemory::enqueue_dram(std::uint64_t t, DramRequest req) {
  req.order = next_order_++;
  const std::uint32_t b = bank_of(req.line);
  req.row = row_of(req.line);
  Bank& bank = banks_[b];
  bank.pending.push_back(req);
  if (!bank.in_service) start_service(b, t);
}

std::uint32_t TimedMemory::alloc_mshr(std::uint64_t& t) {
  if (pending_ >= params_.mshrs) {
    // The hardware MSHR file is full: the issue stalls until a fill frees an
    // entry. Every pending entry has a completion event in flight, so the
    // queue cannot run dry before the file drains.
    ++stats_.mshr_full_stalls;
    while (pending_ >= params_.mshrs) {
      PLRUPART_ASSERT_MSG(!queue_.empty(), "MSHR file full with no event in flight");
      handle(queue_.pop());
    }
    t = std::max(t, queue_.now());
  }
  for (std::size_t i = 0; i < mshrs_.size(); ++i) {
    if (mshrs_[i].refs == 0) return static_cast<std::uint32_t>(i);
  }
  mshrs_.push_back(Mshr{});
  return static_cast<std::uint32_t>(mshrs_.size() - 1);
}

TimedMemory::Ticket TimedMemory::miss(std::uint64_t t_issue, cache::Addr line,
                                      std::uint32_t way, bool write, bool evicted_valid,
                                      cache::Addr evicted_line) {
  process_until(t_issue);
  // Coalesce: a pending fill for the same line absorbs this miss (the
  // functional cache evicted and re-missed the line inside the fill window).
  for (std::size_t i = 0; i < mshrs_.size(); ++i) {
    Mshr& m = mshrs_[i];
    if (m.refs > 0 && !m.done && m.line == line) {
      ++m.refs;
      ++stats_.mshr_coalesced;
      const std::size_t di = dirty_index(line, way);
      dirty_[di] = dirty_[di] || write;
      return Ticket{static_cast<std::uint32_t>(i), true};
    }
  }

  std::uint64_t t = std::max(t_issue, queue_.now());
  const std::uint32_t slot = alloc_mshr(t);

  // Victim writeback leaves first (it must clear the line buffer before the
  // fill lands); a full writeback queue backpressures the whole miss.
  if (evicted_valid && dirty_[dirty_index(line, way)]) {
    if (wb_used_ >= params_.writeback_queue) {
      ++stats_.wb_full_stalls;
      while (wb_used_ >= params_.writeback_queue) {
        PLRUPART_ASSERT_MSG(!queue_.empty(),
                            "writeback queue full with no event in flight");
        handle(queue_.pop());
      }
      t = std::max(t, queue_.now());
    }
    ++wb_used_;
    ++stats_.dram_writebacks;
    stats_.dram_bytes += geo_.line_bytes;
    DramRequest wb;
    wb.line = evicted_line;
    wb.writeback = true;
    enqueue_dram(t + params_.l2_miss_to_dram_cycles, wb);
  }
  dirty_[dirty_index(line, way)] = write;

  Mshr& m = mshrs_[slot];
  m.line = line;
  m.done = false;
  m.done_at = 0;
  m.refs = 1;
  ++pending_;
  stats_.mshr_peak = std::max(stats_.mshr_peak, pending_);
  ++stats_.dram_reads;
  stats_.dram_bytes += geo_.line_bytes;

  DramRequest rd;
  rd.line = line;
  rd.mshr = slot;
  enqueue_dram(t + params_.l2_miss_to_dram_cycles, rd);
  return Ticket{slot, true};
}

TimedMemory::Ticket TimedMemory::hit(std::uint64_t t_issue, cache::Addr line,
                                     std::uint32_t way, bool write) {
  process_until(t_issue);
  const std::size_t di = dirty_index(line, way);
  dirty_[di] = dirty_[di] || write;
  // A functional hit on a line whose fill is still in flight coalesces into
  // the MSHR: the data is not there yet, so the consumer waits for the fill
  // (hit-under-miss on the SAME line is a merge, not a hit).
  for (std::size_t i = 0; i < mshrs_.size(); ++i) {
    Mshr& m = mshrs_[i];
    if (m.refs > 0 && !m.done && m.line == line) {
      ++m.refs;
      ++stats_.mshr_coalesced;
      return Ticket{static_cast<std::uint32_t>(i), true};
    }
  }
  return Ticket{};
}

std::uint64_t TimedMemory::retire(Ticket ticket) {
  PLRUPART_ASSERT_MSG(ticket.valid, "retire of an invalid ticket");
  Mshr& m = mshrs_[ticket.slot];
  PLRUPART_ASSERT(m.refs > 0);
  while (!m.done) {
    PLRUPART_ASSERT_MSG(!queue_.empty(), "pending MSHR with no event in flight");
    handle(queue_.pop());
  }
  --m.refs;
  return m.done_at;
}

void TimedMemory::drain() {
  while (!queue_.empty()) handle(queue_.pop());
}

}  // namespace plrupart::sim
