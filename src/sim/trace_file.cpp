#include "plrupart/sim/trace_file.hpp"

#include <charconv>
#include <limits>

#include "plrupart/common/assert.hpp"
#include "common/path.hpp"

namespace plrupart::sim {

namespace {

constexpr std::size_t kWriterFlushBytes = 64 * 1024;
constexpr std::uint64_t kMaxGap = std::numeric_limits<std::uint32_t>::max();
constexpr std::size_t kMaxAddrHexDigits = 16;

[[nodiscard]] constexpr bool is_blank(int c) noexcept { return c == ' ' || c == '\t'; }

[[nodiscard]] constexpr int hex_value(int c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

TraceReader::TraceReader(const std::string& path, std::size_t buffer_bytes)
    : in_(path, buffer_bytes) {
  // Header line: exactly "# plrupart-trace v1" or "... v2" plus '\n'. Parsed
  // byte-wise so a CRLF or truncated header is reported as such instead of
  // surfacing later as a confusing record error.
  std::string header;
  for (;;) {
    const int c = in_.get();
    if (c == ByteReader::kEof)
      throw TraceError("trace file '" + path + "': truncated header (EOF before the "
                       "end of the header line)");
    if (c == '\r')
      throw TraceError("trace file '" + path + "': header line ends in CR — CRLF/"
                       "mixed line endings are not supported; convert the line "
                       "endings to LF first (e.g. dos2unix)");
    if (c == '\n') break;
    if (header.size() > kTraceHeaderV1.size())
      throw TraceError("trace file '" + path + "': missing plrupart-trace header");
    header.push_back(static_cast<char>(c));
  }
  if (header == kTraceHeaderV1) {
    format_ = TraceFormat::kTextV1;
  } else if (header == kTraceHeaderV2) {
    format_ = TraceFormat::kBinaryV2;
  } else {
    throw TraceError("trace file '" + path + "': missing plrupart-trace header (first "
                     "line is '" + header + "')");
  }
  data_start_ = in_.offset();
  line_ = 2;
}

void TraceReader::rewind() {
  in_.seek(data_start_);
  line_ = 2;
  prev_addr_ = 0;
  ops_ = 0;
}

std::optional<MemOp> TraceReader::next() {
  auto op = format_ == TraceFormat::kTextV1 ? next_text() : next_binary();
  if (op) ++ops_;
  return op;
}

void TraceReader::fail_line(const std::string& what) const {
  throw TraceError("trace file '" + in_.path() + "', line " + std::to_string(line_) +
                   ": " + what);
}

std::optional<MemOp> TraceReader::next_text() {
  for (;;) {
    int c = in_.get();
    if (c == ByteReader::kEof) return std::nullopt;
    if (c == '\n') {  // blank line
      ++line_;
      continue;
    }
    if (c == '#') {  // comment: discard to end of line (bytes are not stored)
      while ((c = in_.get()) != ByteReader::kEof && c != '\n') {
      }
      ++line_;
      if (c == ByteReader::kEof) return std::nullopt;
      continue;
    }
    if (c == '\r')
      fail_line("CR line ending — CRLF/mixed line endings are not supported; "
                "convert the line endings to LF first (e.g. dos2unix)");
    if (is_blank(c)) continue;  // leading whitespace

    // <gap>: unsigned decimal. A leading '-' is called out explicitly — the
    // old istream-based parser silently wrapped negative gaps to huge values.
    if (c == '-') fail_line("negative gap (gap must be a non-negative instruction count)");
    if (c < '0' || c > '9') fail_line("bad gap (expected a decimal digit, got '" +
                                      std::string(1, static_cast<char>(c)) + "')");
    std::uint64_t gap = static_cast<std::uint64_t>(c - '0');
    while ((c = in_.peek()) >= '0' && c <= '9') {
      gap = gap * 10 + static_cast<std::uint64_t>(c - '0');
      if (gap > kMaxGap) fail_line("gap out of range (exceeds 2^32-1)");
      (void)in_.get();
    }

    // Field separator.
    c = in_.get();
    if (c == ByteReader::kEof || c == '\n') fail_line("truncated record (missing address)");
    if (c == '\r') fail_line("CR line ending — CRLF/mixed line endings are not supported");
    if (!is_blank(c)) fail_line("malformed record (expected whitespace after the gap)");
    while (is_blank(in_.peek())) (void)in_.get();

    // <addr-hex>: up to 16 hex digits, no 0x prefix.
    cache::Addr addr = 0;
    std::size_t digits = 0;
    while (hex_value(in_.peek()) >= 0) {
      if (++digits > kMaxAddrHexDigits) fail_line("address has more than 16 hex digits");
      addr = (addr << 4) | static_cast<cache::Addr>(hex_value(in_.get()));
    }
    if (digits == 0) {
      c = in_.peek();
      if (c == ByteReader::kEof || c == '\n')
        fail_line("truncated record (missing address)");
      fail_line("bad address (expected hex digits, got '" +
                std::string(1, static_cast<char>(c)) + "')");
    }

    // Separator, then <R|W>.
    c = in_.get();
    if (c == ByteReader::kEof || c == '\n') fail_line("truncated record (missing R/W flag)");
    if (c == '\r') fail_line("CR line ending — CRLF/mixed line endings are not supported");
    if (!is_blank(c)) fail_line("malformed record (expected whitespace after the address)");
    while (is_blank(in_.peek())) (void)in_.get();
    c = in_.get();
    if (c == ByteReader::kEof || c == '\n') fail_line("truncated record (missing R/W flag)");
    if (c != 'R' && c != 'W')
      fail_line("bad R/W flag '" + std::string(1, static_cast<char>(c)) + "'");
    const bool write = c == 'W';

    // End of record: optional trailing blanks, then newline or EOF.
    while (is_blank(in_.peek())) (void)in_.get();
    c = in_.get();
    if (c == '\r') fail_line("CR line ending — CRLF/mixed line endings are not supported");
    if (c != ByteReader::kEof && c != '\n')
      fail_line("trailing characters after the R/W flag");
    if (c == '\n') ++line_;

    return MemOp{.addr = addr, .write = write,
                 .gap_instrs = static_cast<std::uint32_t>(gap)};
  }
}

std::optional<MemOp> TraceReader::next_binary() {
  if (in_.peek() == ByteReader::kEof) return std::nullopt;  // clean record boundary
  const std::uint64_t meta = read_varint(in_);
  const std::uint64_t gap = meta >> 1;
  if (gap > kMaxGap)
    throw TraceError("trace file '" + in_.path() + "': gap out of range (exceeds "
                     "2^32-1) at byte " + std::to_string(in_.offset()));
  // EOF between the two varints of a record is mid-record: read_varint
  // reports it as a truncated record.
  const std::uint64_t delta = read_varint(in_);
  prev_addr_ += static_cast<cache::Addr>(zigzag_decode(delta));
  return MemOp{.addr = prev_addr_, .write = (meta & 1) != 0,
               .gap_instrs = static_cast<std::uint32_t>(gap)};
}

// ---------------------------------------------------------------------------
// FileTraceSource
// ---------------------------------------------------------------------------

FileTraceSource::FileTraceSource(const std::string& path, std::size_t buffer_bytes)
    : reader_(path, buffer_bytes), name_(path_basename(path)) {
  // Validate up front that there is at least one record, preserving the
  // historical "empty trace file" construction-time failure.
  if (!reader_.next())
    throw TraceError("empty trace file '" + path + "' (header but no records)");
  reader_.rewind();
}

MemOp FileTraceSource::next() {
  auto op = reader_.next();
  if (!op) {
    ++loops_;
    reader_.rewind();
    op = reader_.next();  // non-empty was checked at construction
    PLRUPART_ASSERT_MSG(op.has_value(), "trace became empty on rewind: " + name_);
  }
  ++delivered_;
  return *op;
}

void FileTraceSource::reset() { reader_.rewind(); }

// ---------------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, TraceFormat format)
    : path_(path), out_(path, std::ios::binary), format_(format) {
  if (!out_.good()) throw TraceError("cannot write trace file '" + path + "'");
  chunk_.reserve(kWriterFlushBytes + 64);
  chunk_.append(trace_format_header(format));
  chunk_.push_back('\n');
}

TraceWriter::~TraceWriter() {
  if (!closed_) flush_chunk();  // best effort; errors are only visible via close()
}

void TraceWriter::flush_chunk() {
  if (!chunk_.empty()) {
    out_.write(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
    chunk_.clear();
  }
}

void TraceWriter::append(const MemOp& op) {
  PLRUPART_ASSERT_MSG(!closed_, "append() on a closed TraceWriter: " + path_);
  if (format_ == TraceFormat::kTextV1) {
    char buf[32];
    auto [gap_end, gap_ec] = std::to_chars(buf, buf + sizeof buf, op.gap_instrs);
    PLRUPART_ASSERT(gap_ec == std::errc{});
    chunk_.append(buf, gap_end);
    chunk_.push_back(' ');
    auto [addr_end, addr_ec] = std::to_chars(buf, buf + sizeof buf, op.addr, 16);
    PLRUPART_ASSERT(addr_ec == std::errc{});
    chunk_.append(buf, addr_end);
    chunk_.push_back(' ');
    chunk_.push_back(op.write ? 'W' : 'R');
    chunk_.push_back('\n');
  } else {
    append_varint(chunk_, (static_cast<std::uint64_t>(op.gap_instrs) << 1) |
                              (op.write ? 1u : 0u));
    append_varint(chunk_, zigzag_encode(static_cast<std::int64_t>(op.addr - prev_addr_)));
    prev_addr_ = op.addr;
  }
  ++ops_;
  if (chunk_.size() >= kWriterFlushBytes) flush_chunk();
}

void TraceWriter::close() {
  PLRUPART_ASSERT_MSG(!closed_, "double close() on TraceWriter: " + path_);
  if (ops_ == 0)
    throw TraceError("refusing to finalize empty trace '" + path_ +
                     "' (no records appended)");
  flush_chunk();
  out_.flush();
  if (!out_.good()) throw TraceError("short write to trace file '" + path_ + "'");
  closed_ = true;
}

// ---------------------------------------------------------------------------
// Free functions
// ---------------------------------------------------------------------------

void write_trace_file(const std::string& path, const std::vector<MemOp>& ops,
                      TraceFormat format) {
  PLRUPART_ASSERT_MSG(!ops.empty(), "refusing to write an empty trace");
  TraceWriter writer(path, format);
  for (const auto& op : ops) writer.append(op);
  writer.close();
}

TraceFormat probe_trace_file(const std::string& path) {
  TraceReader reader(path, 4096);
  if (!reader.next())
    throw TraceError("empty trace file '" + path + "' (header but no records)");
  return reader.format();
}

std::vector<MemOp> record_trace(TraceSource& source, std::size_t count) {
  PLRUPART_ASSERT(count > 0);
  std::vector<MemOp> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ops.push_back(source.next());
  return ops;
}

}  // namespace plrupart::sim
