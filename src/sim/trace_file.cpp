#include "sim/trace_file.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace plrupart::sim {

namespace {
constexpr const char* kHeader = "# plrupart-trace v1";

[[nodiscard]] std::string basename_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}
}  // namespace

FileTraceSource::FileTraceSource(const std::string& path) : name_(basename_of(path)) {
  std::ifstream in(path);
  PLRUPART_ASSERT_MSG(in.good(), "cannot open trace file " + path);
  std::string line;
  PLRUPART_ASSERT_MSG(std::getline(in, line) && line == kHeader,
                      "missing plrupart-trace v1 header in " + path);
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    MemOp op;
    std::string addr_hex, rw;
    if (!(ss >> op.gap_instrs >> addr_hex >> rw)) {
      PLRUPART_ASSERT_MSG(false, path + ": malformed record at line " +
                                     std::to_string(lineno));
    }
    std::uint64_t addr = 0;
    const auto* begin = addr_hex.data();
    const auto* end = begin + addr_hex.size();
    auto [ptr, ec] = std::from_chars(begin, end, addr, 16);
    PLRUPART_ASSERT_MSG(ec == std::errc{} && ptr == end,
                        path + ": bad address at line " + std::to_string(lineno));
    op.addr = addr;
    PLRUPART_ASSERT_MSG(rw == "R" || rw == "W",
                        path + ": bad R/W flag at line " + std::to_string(lineno));
    op.write = rw == "W";
    ops_.push_back(op);
  }
  PLRUPART_ASSERT_MSG(!ops_.empty(), "empty trace file " + path);
}

MemOp FileTraceSource::next() {
  const MemOp op = ops_[cursor_];
  cursor_ = (cursor_ + 1) % ops_.size();
  return op;
}

void write_trace_file(const std::string& path, const std::vector<MemOp>& ops) {
  PLRUPART_ASSERT_MSG(!ops.empty(), "refusing to write an empty trace");
  std::ofstream out(path);
  PLRUPART_ASSERT_MSG(out.good(), "cannot write trace file " + path);
  out << kHeader << '\n';
  for (const auto& op : ops) {
    out << op.gap_instrs << ' ' << std::hex << op.addr << std::dec << ' '
        << (op.write ? 'W' : 'R') << '\n';
  }
  PLRUPART_ASSERT_MSG(out.good(), "short write to trace file " + path);
}

std::vector<MemOp> record_trace(TraceSource& source, std::size_t count) {
  PLRUPART_ASSERT(count > 0);
  std::vector<MemOp> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ops.push_back(source.next());
  return ops;
}

}  // namespace plrupart::sim
