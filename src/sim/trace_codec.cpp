#include "plrupart/sim/trace_codec.hpp"

#include <utility>

namespace plrupart::sim {

ByteReader::ByteReader(std::string path, std::size_t buffer_bytes)
    : path_(std::move(path)),
      in_(path_, std::ios::binary),
      buf_(buffer_bytes > 0 ? buffer_bytes : 1) {
  if (!in_.good()) throw TraceError("cannot open trace file '" + path_ + "'");
}

bool ByteReader::fill() {
  base_ += static_cast<std::uint64_t>(len_);
  pos_ = 0;
  len_ = 0;
  if (!in_.good()) return false;  // a previous read already hit EOF
  in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  if (in_.bad())
    throw TraceError("I/O error reading trace file '" + path_ + "' near byte " +
                     std::to_string(base_));
  len_ = static_cast<std::size_t>(in_.gcount());
  return len_ > 0;
}

void ByteReader::seek(std::uint64_t file_offset) {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(file_offset));
  if (in_.fail())
    throw TraceError("cannot seek to byte " + std::to_string(file_offset) +
                     " in trace file '" + path_ + "'");
  base_ = file_offset;
  pos_ = 0;
  len_ = 0;
}

std::uint64_t read_varint(ByteReader& in) {
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    const int c = in.get();
    if (c == ByteReader::kEof)
      throw TraceError("trace file '" + in.path() + "': truncated record at byte " +
                       std::to_string(in.offset()) + " (EOF inside a varint)");
    const auto byte = static_cast<std::uint64_t>(c & 0x7f);
    // The 10th byte may only carry bit 63: anything larger (or a further
    // continuation bit, checked below) cannot fit a 64-bit value.
    if (i == kMaxVarintBytes - 1 && byte > 1)
      throw TraceError("trace file '" + in.path() + "': varint overflow at byte " +
                       std::to_string(in.offset()) + " (value exceeds 64 bits)");
    result |= byte << (7 * i);
    if ((c & 0x80) == 0) return result;
  }
  throw TraceError("trace file '" + in.path() + "': varint overflow at byte " +
                   std::to_string(in.offset()) + " (more than " +
                   std::to_string(kMaxVarintBytes) + " bytes)");
}

}  // namespace plrupart::sim
