#include "plrupart/sim/trace_codec.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

namespace plrupart::sim {

ByteReader::ByteReader(std::string path, std::size_t buffer_bytes)
    : path_(std::move(path)),
      in_(std::fopen(path_.c_str(), "rb")),
      buf_(buffer_bytes > 0 ? buffer_bytes : 1) {
  if (in_ == nullptr) throw TraceError("cannot open trace file '" + path_ + "'");
}

bool ByteReader::fill() {
  base_ += static_cast<std::uint64_t>(len_);
  pos_ = 0;
  len_ = 0;
  if (eof_) return false;
  for (;;) {
    if (faults_ != nullptr) {
      faults_->maybe_throw(FaultSite::kRead, fills_++, fault_lane_,
                           "trace file '" + path_ + "' near byte " + std::to_string(base_));
    }
    errno = 0;
    const std::size_t n = std::fread(buf_.data(), 1, buf_.size(), in_.get());
    if (n > 0) {
      // A short count with EINTR is a partial success: hand back what we got
      // and clear the error so the next refill resumes where this one left off.
      if (std::ferror(in_.get()) != 0 && errno == EINTR) std::clearerr(in_.get());
      len_ = n;
      return true;
    }
    // Check ferror before feof: an interrupted read can leave both unset-able
    // orders ambiguous, and a real error must never be misread as end of file.
    if (std::ferror(in_.get()) != 0) {
      if (errno == EINTR) {
        std::clearerr(in_.get());
        continue;  // interrupted before any bytes arrived: just retry
      }
      throw TraceIoError("I/O error reading trace file '" + path_ + "' near byte " +
                         std::to_string(base_) + ": " + std::strerror(errno));
    }
    eof_ = true;
    return false;
  }
}

void ByteReader::seek(std::uint64_t file_offset) {
  std::clearerr(in_.get());
  if (::fseeko(in_.get(), static_cast<off_t>(file_offset), SEEK_SET) != 0)
    throw TraceError("cannot seek to byte " + std::to_string(file_offset) +
                     " in trace file '" + path_ + "'");
  eof_ = false;
  base_ = file_offset;
  pos_ = 0;
  len_ = 0;
}

std::uint64_t read_varint(ByteReader& in) {
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    const int c = in.get();
    if (c == ByteReader::kEof)
      throw TraceError("trace file '" + in.path() + "': truncated record at byte " +
                       std::to_string(in.offset()) + " (EOF inside a varint)");
    const auto byte = static_cast<std::uint64_t>(c & 0x7f);
    // The 10th byte may only carry bit 63: anything larger (or a further
    // continuation bit, checked below) cannot fit a 64-bit value.
    if (i == kMaxVarintBytes - 1 && byte > 1)
      throw TraceError("trace file '" + in.path() + "': varint overflow at byte " +
                       std::to_string(in.offset()) + " (value exceeds 64 bits)");
    result |= byte << (7 * i);
    if ((c & 0x80) == 0) return result;
  }
  throw TraceError("trace file '" + in.path() + "': varint overflow at byte " +
                   std::to_string(in.offset()) + " (more than " +
                   std::to_string(kMaxVarintBytes) + " bytes)");
}

}  // namespace plrupart::sim
