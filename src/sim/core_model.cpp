// CoreModel is header-only; this translation unit anchors the module.
#include "plrupart/sim/core_model.hpp"

namespace plrupart::sim {

static_assert(sizeof(CoreModel) > 0);

}  // namespace plrupart::sim
