// Lock-free plumbing for the set-sharded simulator (sim/sharded_replay.cpp).
//
// Three pieces, all built on acquire/release atomics so the TSan tier can
// certify the whole execution mode:
//
//  * BroadcastRing<T> — single-producer ring where EVERY consumer reads EVERY
//    record (SPMC broadcast, not work distribution). The demux thread streams
//    each core's trace into one of these; all shard workers replay the full
//    stream so their replicated simulator state stays bit-identical.
//  * ShardBarrier — sense-reversing barrier whose last arriver runs a critical
//    section (the interval-boundary histogram merge + repartition) before
//    releasing the others.
//  * AbortFlag / ShardAbort — first-error latch. Any thread that fails raises
//    the flag; every blocking loop polls it and bails out with ShardAbort, so
//    one failing worker never strands the others in a spin. The driver joins
//    everything, then rethrows the first real exception.
//
// Progress argument (no deadlock): every worker consumes the one global op
// sequence in the same order. A producer blocked on a full ring implies some
// consumer cursor lags by a full ring; that consumer is at an earlier global
// position, and whatever IT waits on (an op record already published, an
// outcome owned by a worker at an even earlier position, or a barrier that
// every worker reaches at the same op) is satisfiable by induction on the
// minimal unconsumed position.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "plrupart/common/assert.hpp"
#include "plrupart/common/error.hpp"

namespace plrupart::sim::internal {

/// Thrown out of blocking loops when another thread already failed. Worker
/// wrappers swallow it; only the original exception leaves the driver.
struct ShardAbort {};

/// Brief spin, then yield: boundary waits are short (microseconds) when the
/// shards are balanced, but oversubscribed hosts (and the TSan tier) need the
/// yield to let the thread holding the awaited state run at all.
inline void shard_relax(std::uint32_t& spins) noexcept {
  if (++spins >= 32) {
    spins = 0;
    std::this_thread::yield();
  }
}

class AbortFlag {
 public:
  /// raise() is const so polling sites holding a `const AbortFlag&` (the
  /// rings) can latch a watchdog expiry; the latch state is mutable because
  /// it is bookkeeping about the run, not part of any thread's result.
  void raise(std::exception_ptr error) const {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::move(error);
    }
    aborted_.store(true, std::memory_order_release);
  }

  /// Arm the watchdog (--job-timeout): once `deadline` passes, the next
  /// check() latches a TimeoutError carrying `what` and every blocking loop
  /// unwinds via ShardAbort — the same clean join path as any other failure.
  /// Call before the worker threads start.
  void arm_deadline(std::chrono::steady_clock::time_point deadline, std::string what) {
    deadline_ = deadline;
    deadline_what_ = std::move(what);
    deadline_armed_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  /// Poll from inside any blocking loop. Samples the clock only every 64th
  /// call so an armed deadline costs the spin loops one relaxed RMW, not a
  /// syscall, per iteration.
  void check() const {
    if (deadline_armed_.load(std::memory_order_acquire) &&
        (deadline_polls_.fetch_add(1, std::memory_order_relaxed) & 0x3fU) == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      raise(std::make_exception_ptr(TimeoutError(deadline_what_)));
    }
    if (aborted()) throw ShardAbort{};
  }

  /// Rethrow the first real exception, if any (call after joining all threads).
  void rethrow_if_error() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  mutable std::atomic<bool> aborted_{false};
  mutable std::mutex mutex_;
  mutable std::exception_ptr first_error_;
  std::atomic<bool> deadline_armed_{false};
  mutable std::atomic<std::uint64_t> deadline_polls_{0};
  std::chrono::steady_clock::time_point deadline_{};
  std::string deadline_what_;
};

/// Single-producer broadcast ring: one writer publishes a totally-ordered
/// stream, `consumers` readers each consume every record at their own pace.
/// A slot is reusable only once every consumer has moved past it, so the
/// producer can run at most `capacity` records ahead of the slowest reader.
template <class T>
class BroadcastRing {
 public:
  BroadcastRing(std::size_t capacity_pow2, std::uint32_t consumers)
      : mask_(capacity_pow2 - 1), slots_(capacity_pow2), tails_(consumers) {
    PLRUPART_ASSERT((capacity_pow2 & mask_) == 0 && capacity_pow2 >= 2);
    PLRUPART_ASSERT(consumers >= 1);
  }

  /// Producer: true if a push would not have to wait on a lagging consumer.
  [[nodiscard]] bool can_push() const noexcept {
    return min_tail() + slots_.size() > head_.load(std::memory_order_relaxed);
  }

  /// Producer: publish one record, waiting for ring space if needed.
  void push(const T& value, const AbortFlag& abort) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint32_t spins = 0;
    while (min_tail() + slots_.size() <= head) {
      abort.check();
      shard_relax(spins);
    }
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
  }

  /// Consumer `c`: read the next record, waiting for the producer if needed.
  T pop(std::uint32_t c, const AbortFlag& abort) {
    auto& tail = tails_[c].pos;
    const std::uint64_t p = tail.load(std::memory_order_relaxed);
    std::uint32_t spins = 0;
    while (head_.load(std::memory_order_acquire) <= p) {
      abort.check();
      shard_relax(spins);
    }
    T value = slots_[p & mask_];
    tail.store(p + 1, std::memory_order_release);
    return value;
  }

  /// Producer-side self-consume: when the producing worker is also registered
  /// as consumer `c` (outcome rings: the shard owner publishes and must not
  /// gate its own ring), it advances its cursor without reading.
  void skip(std::uint32_t c) noexcept {
    tails_[c].pos.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::uint64_t min_tail() const noexcept {
    std::uint64_t m = ~std::uint64_t{0};
    for (const auto& t : tails_) {
      const std::uint64_t v = t.pos.load(std::memory_order_acquire);
      if (v < m) m = v;
    }
    return m;
  }

  struct alignas(64) PaddedCursor {
    std::atomic<std::uint64_t> pos{0};
  };

  std::uint64_t mask_;
  std::vector<T> slots_;
  std::vector<PaddedCursor> tails_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

/// Sense-reversing barrier. The last thread to arrive runs `critical()` while
/// everyone else is parked, then releases the generation — which is exactly
/// the shape of the interval boundary: quiesce, merge + repartition once,
/// resume. If `critical` throws, the error is latched in `abort` and every
/// participant (including the thrower) leaves via ShardAbort.
class ShardBarrier {
 public:
  explicit ShardBarrier(std::uint32_t parties) : parties_(parties) {
    PLRUPART_ASSERT(parties >= 1);
  }

  template <class F>
  void arrive_and_wait(AbortFlag& abort, F&& critical) {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      try {
        critical();
      } catch (const ShardAbort&) {
      } catch (...) {
        abort.raise(std::current_exception());
      }
      arrived_.store(0, std::memory_order_relaxed);
      // acq_rel RMW: publishes the critical section's writes (and the arrival
      // reset) to every waiter's acquire load below.
      generation_.fetch_add(1, std::memory_order_acq_rel);
      abort.check();
      return;
    }
    std::uint32_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      abort.check();
      shard_relax(spins);
    }
    abort.check();
  }

 private:
  std::uint32_t parties_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace plrupart::sim::internal
